//! The BayesCrowd framework (Algorithm 1 + Algorithm 4).

use crate::config::{BayesCrowdConfig, SolverKind};
use crate::report::RunReport;
use crate::selection::{assemble_round, rank_objects};
use bc_bayes::{MissingValueModel, Pmf};
use bc_crowd::{CrowdPlatform, Task, TaskAnswer, TaskOutcome};
use bc_ctable::{build_ctable, CTable, CmpOp, ConstraintStore, Relation};
use bc_data::{Accuracy, Dataset, ObjectId, VarId};
use bc_solver::{AdpllSolver, Solver, VarDists};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// A failed task waiting in the retry queue.
#[derive(Clone, Copy, Debug)]
struct PendingTask {
    task: Task,
    /// Posting attempts so far (≥ 1; the task failed each of them).
    attempts: usize,
    /// First round (1-based) the task may be re-posted in, per the retry
    /// policy's backoff.
    eligible_round: usize,
}

/// Whether a failed task is still worth re-posting: propagation may have
/// decided everything its variables touch, in which case the answer would
/// be useless.
fn task_still_open(ctable: &CTable, task: &Task) -> bool {
    let vars: BTreeSet<VarId> = task.vars().collect();
    ctable
        .open_objects()
        .iter()
        .any(|&o| !ctable.condition(o).vars().is_disjoint(&vars))
}

/// The crowd-assisted skyline query engine.
#[derive(Clone, Debug)]
pub struct BayesCrowd {
    config: BayesCrowdConfig,
}

impl BayesCrowd {
    /// An engine with the given configuration.
    pub fn new(config: BayesCrowdConfig) -> BayesCrowd {
        BayesCrowd { config }
    }

    /// The configuration.
    pub fn config(&self) -> &BayesCrowdConfig {
        &self.config
    }

    /// Runs the full query (Algorithm 1): modeling phase, then the iterative
    /// crowdsourcing phase against `platform`, and returns the answer set
    /// with all measurements. Accuracy is computed against the skyline of
    /// the platform's ground truth, when it exposes one.
    ///
    /// The platform is any [`CrowdPlatform`] — tasks may come back expired
    /// or inconsistent, in which case the configured
    /// [`RetryPolicy`](bc_crowd::RetryPolicy) re-queues them under the same
    /// budget `B` and latency `L`. When both run out with tasks still
    /// unanswered the run *degrades* instead of failing: the c-table keeps
    /// its symbolic variables, answer probabilities come from the current
    /// posterior, and the report's `degraded`/`tasks_expired` fields say
    /// what was given up.
    pub fn run(&self, data: &Dataset, platform: &mut dyn CrowdPlatform) -> RunReport {
        let t_start = Instant::now();

        // ---- Modeling phase --------------------------------------------
        let model = MissingValueModel::learn(data, &self.config.model);
        let base_pmfs: BTreeMap<VarId, Pmf> = model.into_pmfs();
        let mut dists: VarDists = base_pmfs.iter().map(|(k, v)| (*k, v.clone())).collect();
        let mut ctable = build_ctable(data, &self.config.ctable_config());
        let modeling_time = t_start.elapsed();

        // ---- Crowdsourcing phase (Algorithm 4) --------------------------
        let solver = self.config.solver.build();
        let mut store = ConstraintStore::new(data);
        let mut budget = self.config.budget;
        let mu = self.config.tasks_per_round().max(1);
        let retry = self.config.retry;
        let mut evals: u64 = 0;

        // Failure bookkeeping. Latency is measured against the platform's
        // own round counter (a straggling platform may consume several
        // rounds per posted batch) plus locally idled backoff rounds.
        let rounds_before = platform.stats().rounds;
        let mut pending: Vec<PendingTask> = Vec::new();
        let mut tasks_expired = 0usize;
        let mut tasks_retried = 0usize;
        let mut rounds_stalled = 0usize;
        // Rounds spent posting nothing while queued tasks wait out their
        // backoff. They consume latency (a real campaign waits through
        // them) but never appear in the platform's round counter.
        let mut idle_rounds = 0usize;
        let mut round_idx = 0usize;

        // Condition probabilities are cached across rounds: a round's
        // answers only change the distributions of the variables they asked
        // about, so only conditions mentioning those variables need
        // re-solving.
        let mut prob_cache: BTreeMap<ObjectId, f64> = BTreeMap::new();
        loop {
            if budget == 0 || ctable.n_open_exprs() == 0 {
                break;
            }
            if self.config.latency > 0
                && (platform.stats().rounds - rounds_before) + idle_rounds >= self.config.latency
            {
                break;
            }
            round_idx += 1;
            let limit = mu.min(budget);

            // Re-posts come first: failed tasks whose backoff has elapsed
            // and whose answer is still useful (propagation may have decided
            // everything they touch in the meantime — those drop quietly).
            let mut batch: Vec<Task> = Vec::new();
            let mut attempts_in_batch: Vec<usize> = Vec::new();
            let mut waiting: Vec<PendingTask> = Vec::new();
            for p in pending.drain(..) {
                if !task_still_open(&ctable, &p.task) {
                    continue;
                }
                if p.eligible_round <= round_idx && batch.len() < limit {
                    batch.push(p.task);
                    attempts_in_batch.push(p.attempts);
                } else {
                    waiting.push(p);
                }
            }
            pending = waiting;
            let n_retries = batch.len();
            tasks_retried += n_retries;
            if n_retries > 0 && retry.escalate_workers > 0 {
                platform.escalate(retry.escalate_workers);
            }

            // Variables already spoken for: this round's re-posts and the
            // queued tasks still backing off. Fresh selection must not ask
            // about them a second time.
            let mut reserved: BTreeSet<VarId> = batch.iter().flat_map(|t| t.vars()).collect();
            reserved.extend(pending.iter().flat_map(|p| p.task.vars()));

            if batch.len() < limit {
                let open = ctable.open_objects();
                let stale: Vec<ObjectId> = open
                    .iter()
                    .copied()
                    .filter(|o| !prob_cache.contains_key(o))
                    .collect();
                let fresh = self.probabilities(&ctable, &stale, solver.as_ref(), &dists);
                evals += fresh.len() as u64;
                prob_cache.extend(fresh);
                let probs: Vec<(ObjectId, f64)> =
                    open.iter().map(|o| (*o, prob_cache[o])).collect();
                let ranked = rank_objects(&probs, self.config.ranking);
                let fresh_tasks = assemble_round(
                    &ranked,
                    &ctable,
                    self.config.strategy,
                    solver.as_ref(),
                    &dists,
                    limit - batch.len(),
                    self.config.conflict_free,
                    &reserved,
                );
                attempts_in_batch.resize(batch.len() + fresh_tasks.len(), 0);
                batch.extend(fresh_tasks);
            }

            if batch.is_empty() {
                if pending.is_empty() {
                    break;
                }
                // Everything still owed is backing off: idle one round.
                idle_rounds += 1;
                rounds_stalled += 1;
                continue;
            }

            // Algorithm 4 line 8: B ← max(B − μ, 0). The full per-round
            // allowance is charged even if conflicts left some of it unused,
            // which is what bounds the number of rounds by L. Re-posts are
            // tasks like any other and consume the same allowance.
            budget = budget.saturating_sub(limit);

            let results = platform.post_round(&batch);
            let mut answers: Vec<TaskAnswer> = Vec::with_capacity(batch.len());
            for (i, task) in batch.iter().enumerate() {
                // Defensive against foreign platforms returning short result
                // vectors: a missing result is an expired task.
                let outcome = results
                    .get(i)
                    .map(|r| r.outcome)
                    .unwrap_or(TaskOutcome::Expired);
                match outcome {
                    TaskOutcome::Answered(relation) => answers.push(TaskAnswer {
                        task: *task,
                        relation,
                    }),
                    TaskOutcome::Expired | TaskOutcome::Inconsistent => {
                        let attempts = attempts_in_batch[i] + 1;
                        if attempts < retry.max_attempts {
                            pending.push(PendingTask {
                                task: *task,
                                attempts,
                                eligible_round: round_idx + 1 + retry.backoff_rounds(attempts),
                            });
                        } else {
                            tasks_expired += 1;
                        }
                    }
                }
            }
            if answers.is_empty() {
                rounds_stalled += 1;
            }
            // Invalidate cached probabilities of conditions touching any
            // variable the round asked about (their pmfs and/or conditions
            // change below).
            let touched: std::collections::BTreeSet<VarId> =
                answers.iter().flat_map(|a| a.task.vars()).collect();
            prob_cache.retain(|o, _| {
                let cond = ctable.condition(*o);
                !cond.is_decided() && cond.vars().is_disjoint(&touched)
            });
            if self.config.propagate_answers {
                for a in &answers {
                    store.record(a.task.var, a.task.rhs, a.relation);
                }
                ctable.propagate(&store);
                // Re-condition each touched variable's distribution on its
                // narrowed candidate set.
                for (var, base) in &base_pmfs {
                    let mask = store.mask(*var);
                    if let Some(pmf) = base.conditioned(mask) {
                        dists.insert(*var, pmf);
                    }
                }
            } else {
                // Ablation: an answer only settles the exact expression it
                // was derived from — no cross-condition inference.
                let answered: BTreeMap<Task, Relation> =
                    answers.iter().map(|a| (a.task, a.relation)).collect();
                for o in data.objects() {
                    let cond = ctable.condition(o);
                    if cond.is_decided() {
                        continue;
                    }
                    let simplified = cond.simplify(|e| {
                        answered
                            .get(&Task::from_expr(e))
                            .map(|&rel| expr_truth(e.op(), rel))
                    });
                    ctable.set_condition(o, simplified);
                }
            }
        }

        // Tasks still queued (and still useful) when budget or latency ran
        // out never got their answer: graceful degradation, not an error.
        tasks_expired += pending
            .iter()
            .filter(|p| task_still_open(&ctable, &p.task))
            .count();
        let degraded = tasks_expired > 0;

        // ---- Derive the answer set --------------------------------------
        // Open conditions keep their symbolic variables; their objects are
        // judged by the probability under the current posterior, exactly as
        // in a fully-budgeted run that simply stopped earlier.
        let open = ctable.open_objects();
        let final_probs = self.probabilities(&ctable, &open, solver.as_ref(), &dists);
        evals += final_probs.len() as u64;
        let certain = ctable.certain_answers();
        let mut result = certain.clone();
        let mut open_probabilities = BTreeMap::new();
        for (o, p) in final_probs {
            open_probabilities.insert(o, p);
            if p > self.config.answer_threshold {
                result.push(o);
            }
        }
        result.sort_unstable();

        let truth = platform
            .ground_truth()
            .and_then(|complete| bc_data::skyline::skyline_sfs(complete).ok());
        let accuracy = truth.map(|t| Accuracy::of(&result, &t));

        RunReport {
            result,
            certain,
            open_probabilities,
            accuracy,
            crowd: platform.stats(),
            budget_left: budget,
            modeling_time,
            total_time: t_start.elapsed(),
            probability_evals: evals,
            open_exprs_left: ctable.n_open_exprs(),
            tasks_expired,
            tasks_retried,
            rounds_stalled,
            degraded,
        }
    }

    /// Per-object condition probabilities, optionally in parallel. Solver
    /// errors (e.g. the naive enumerator's state cap) fall back to ADPLL,
    /// which always succeeds.
    fn probabilities(
        &self,
        ctable: &CTable,
        objects: &[ObjectId],
        solver: &dyn Solver,
        dists: &VarDists,
    ) -> Vec<(ObjectId, f64)> {
        let solve_one = |solver: &dyn Solver, o: ObjectId| -> (ObjectId, f64) {
            let cond = ctable.condition(o);
            let p = solver.probability(cond, dists).unwrap_or_else(|_| {
                AdpllSolver::new()
                    .probability(cond, dists)
                    .expect("ADPLL cannot overflow and every variable is modeled")
            });
            (o, p)
        };

        if self.config.parallel && objects.len() > 64 && self.config.solver == SolverKind::Adpll {
            let n_threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(objects.len());
            let chunk = objects.len().div_ceil(n_threads);
            let mut out: Vec<(ObjectId, f64)> = Vec::with_capacity(objects.len());
            std::thread::scope(|s| {
                let handles: Vec<_> = objects
                    .chunks(chunk)
                    .map(|slice| {
                        s.spawn(move || {
                            let local = AdpllSolver::new();
                            slice
                                .iter()
                                .map(|&o| solve_one(&local, o))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    out.extend(h.join().expect("probability worker panicked"));
                }
            });
            out
        } else {
            objects.iter().map(|&o| solve_one(solver, o)).collect()
        }
    }
}

/// Truth of an expression `var op rhs` given the answered relation of
/// `var` to `rhs`.
fn expr_truth(op: CmpOp, rel: Relation) -> bool {
    match op {
        CmpOp::Lt => rel == Relation::Lt,
        CmpOp::Le => rel != Relation::Gt,
        CmpOp::Gt => rel == Relation::Gt,
        CmpOp::Ge => rel != Relation::Lt,
        CmpOp::Eq => rel == Relation::Eq,
        CmpOp::Ne => rel != Relation::Eq,
    }
}

/// Convenience used by tests and examples: the answer set a machine-only
/// pass would return (no crowdsourcing at all) — certain answers plus
/// high-probability open objects.
pub fn machine_only_answers(data: &Dataset, config: &BayesCrowdConfig) -> (Vec<ObjectId>, CTable) {
    let model = MissingValueModel::learn(data, &config.model);
    let dists: VarDists = model.pmfs().iter().map(|(k, v)| (*k, v.clone())).collect();
    let ctable = build_ctable(data, &config.ctable_config());
    let solver = AdpllSolver::new();
    let mut result = ctable.certain_answers();
    for o in ctable.open_objects() {
        let p = solver
            .probability(ctable.condition(o), &dists)
            .unwrap_or(0.0);
        if p > config.answer_threshold {
            result.push(o);
        }
    }
    result.sort_unstable();
    (result, ctable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::TaskStrategy;
    use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
    use bc_data::generators::sample::{paper_completion, paper_dataset};

    fn sample_config(strategy: TaskStrategy) -> BayesCrowdConfig {
        BayesCrowdConfig {
            budget: 6,
            latency: 3,
            alpha: 1.0,
            strategy,
            ..Default::default()
        }
    }

    fn run_sample(strategy: TaskStrategy, accuracy: f64, seed: u64) -> RunReport {
        let data = paper_dataset();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, accuracy, seed);
        BayesCrowd::new(sample_config(strategy)).run(&data, &mut platform)
    }

    #[test]
    fn paper_example_4_setting_respects_budget_and_latency() {
        // Budget 6, latency 3 → 2 tasks per round, HHS with m = 2, perfect
        // workers (the paper's Example 4 setting). Which tasks get asked
        // depends on tie-breaks, so the guaranteed properties are the
        // budget/latency bounds and a high-quality answer.
        let report = run_sample(TaskStrategy::Hhs { m: 2 }, 1.0, 7);
        assert!(report.crowd.tasks_posted <= 6);
        assert!(report.crowd.rounds <= 3);
        assert!(report.accuracy.unwrap().f1 >= 0.8, "{}", report.summary());
        // The two machine-certain answers are always present.
        assert!(report.result.contains(&ObjectId(1)));
        assert!(report.result.contains(&ObjectId(2)));
    }

    #[test]
    fn ample_budget_resolves_the_sample_exactly() {
        let data = paper_dataset();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 7);
        let config = BayesCrowdConfig {
            budget: 20,
            latency: 10,
            ..sample_config(TaskStrategy::Hhs { m: 2 })
        };
        let report = BayesCrowd::new(config).run(&data, &mut platform);
        assert_eq!(
            report.result,
            vec![ObjectId(0), ObjectId(1), ObjectId(2), ObjectId(4)]
        );
        assert_eq!(report.accuracy.unwrap().f1, 1.0);
        assert_eq!(report.open_exprs_left, 0, "{}", report.summary());
    }

    #[test]
    fn all_strategies_solve_the_sample() {
        for strategy in [
            TaskStrategy::Fbs,
            TaskStrategy::Ubs,
            TaskStrategy::Hhs { m: 2 },
        ] {
            let data = paper_dataset();
            let oracle = GroundTruthOracle::new(paper_completion());
            let mut platform = SimulatedPlatform::new(oracle, 1.0, 11);
            let config = BayesCrowdConfig {
                budget: 20,
                latency: 10,
                ..sample_config(strategy)
            };
            let report = BayesCrowd::new(config).run(&data, &mut platform);
            assert_eq!(
                report.accuracy.unwrap().f1,
                1.0,
                "{} failed: {}",
                strategy.name(),
                report.summary()
            );
        }
    }

    #[test]
    fn zero_budget_posts_nothing() {
        let data = paper_dataset();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 3);
        let config = BayesCrowdConfig {
            budget: 0,
            ..sample_config(TaskStrategy::Fbs)
        };
        let report = BayesCrowd::new(config).run(&data, &mut platform);
        assert_eq!(report.crowd.tasks_posted, 0);
        assert_eq!(report.crowd.rounds, 0);
        // o2/o3 are certain regardless.
        assert!(report.certain.contains(&ObjectId(1)));
        assert!(report.certain.contains(&ObjectId(2)));
    }

    #[test]
    fn budget_is_respected() {
        let report = run_sample(TaskStrategy::Fbs, 1.0, 5);
        assert!(report.crowd.tasks_posted + report.budget_left <= 6);
    }

    #[test]
    fn latency_bounds_round_size() {
        // Budget 6, latency 2 → at most 3 tasks per round.
        let data = paper_dataset();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 5);
        let config = BayesCrowdConfig {
            budget: 6,
            latency: 2,
            ..sample_config(TaskStrategy::Fbs)
        };
        let report = BayesCrowd::new(config).run(&data, &mut platform);
        assert!(report.crowd.rounds <= 3, "{}", report.summary());
    }

    #[test]
    fn noisy_workers_still_usually_work_on_the_sample() {
        // With accuracy 0.9, majority voting, and an ample budget the sample
        // usually resolves; across seeds the average F1 must stay high.
        let mut total = 0.0;
        for seed in 0..20 {
            let data = paper_dataset();
            let oracle = GroundTruthOracle::new(paper_completion());
            let mut platform = SimulatedPlatform::new(oracle, 0.9, seed);
            let config = BayesCrowdConfig {
                budget: 20,
                latency: 10,
                ..sample_config(TaskStrategy::Hhs { m: 2 })
            };
            total += BayesCrowd::new(config)
                .run(&data, &mut platform)
                .accuracy
                .unwrap()
                .f1;
        }
        assert!(total / 20.0 > 0.85, "avg f1 = {}", total / 20.0);
    }

    #[test]
    fn machine_only_pass_returns_probable_answers() {
        let data = paper_dataset();
        let (answers, ctable) = machine_only_answers(&data, &sample_config(TaskStrategy::Fbs));
        // o2, o3 certain; o1 and o5 have probability > 0.5 under uniform-ish
        // priors (φ(o1) ≈ 0.9+, φ(o5) ≈ 0.8).
        assert!(answers.contains(&ObjectId(1)));
        assert!(answers.contains(&ObjectId(2)));
        assert_eq!(ctable.open_objects().len(), 3);
    }

    #[test]
    fn expr_truth_table() {
        use CmpOp::*;
        assert!(expr_truth(Lt, Relation::Lt));
        assert!(!expr_truth(Lt, Relation::Eq));
        assert!(expr_truth(Le, Relation::Eq));
        assert!(expr_truth(Gt, Relation::Gt));
        assert!(!expr_truth(Gt, Relation::Eq));
        assert!(expr_truth(Ge, Relation::Eq));
        assert!(expr_truth(Eq, Relation::Eq));
        assert!(expr_truth(Ne, Relation::Gt));
    }

    #[test]
    fn propagation_ablation_resolves_less_per_budget() {
        // Statistically, cross-condition inference (constraint propagation)
        // resolves more expressions for the same budget than deciding only
        // the asked expression. On any single instance task selection may
        // diverge and luck can win, so the claim is tested in aggregate on a
        // non-trivial workload.
        let complete = bc_data::generators::classic::correlated(80, 4, 8, 0.7, 31);
        let (data, _) = bc_data::missing::inject_mcar(&complete, 0.2, 32);
        let run = |propagate: bool, seed: u64| {
            let oracle = GroundTruthOracle::new(complete.clone());
            let mut platform = SimulatedPlatform::new(oracle, 1.0, seed);
            let config = BayesCrowdConfig {
                budget: 20,
                latency: 5,
                alpha: 1.0,
                propagate_answers: propagate,
                strategy: TaskStrategy::Fbs,
                ..Default::default()
            };
            BayesCrowd::new(config).run(&data, &mut platform)
        };
        let mut with_total = 0usize;
        let mut without_total = 0usize;
        for seed in 0..6 {
            with_total += run(true, seed).open_exprs_left;
            without_total += run(false, seed).open_exprs_left;
        }
        assert!(
            with_total <= without_total,
            "propagation should resolve at least as much: {with_total} vs {without_total}"
        );
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let data = paper_dataset();
        let mk = |parallel: bool| {
            let oracle = GroundTruthOracle::new(paper_completion());
            let mut platform = SimulatedPlatform::new(oracle, 1.0, 9);
            let config = BayesCrowdConfig {
                parallel,
                ..sample_config(TaskStrategy::Fbs)
            };
            BayesCrowd::new(config).run(&data, &mut platform)
        };
        let a = mk(false);
        let b = mk(true);
        assert_eq!(a.result, b.result);
        assert_eq!(a.crowd.tasks_posted, b.crowd.tasks_posted);
    }
}
