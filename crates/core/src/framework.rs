//! The BayesCrowd framework (Algorithm 1 + Algorithm 4).

use crate::config::{BayesCrowdConfig, SolverKind};
use crate::error::RunError;
use crate::report::RunReport;
use crate::selection::{assemble_round, rank_objects};
use bc_bayes::{MissingValueModel, Pmf};
use bc_crowd::{CrowdPlatform, Task, TaskAnswer, TaskOutcome};
use bc_ctable::{build_ctable, build_ctable_with_stats, CTable, CmpOp, ConstraintStore, Relation};
use bc_data::{Accuracy, Dataset, ObjectId, VarId};
use bc_obs::{Event, NoopObserver, Observer, RunPhase, Span};
use bc_solver::{AdpllSolver, SolveStats, Solver, SolverError, VarDists};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Per-object probabilities plus the solver effort behind them: aggregated
/// stats and the number of solver calls (ADPLL fallbacks included).
type SolvedBatch = Result<(Vec<(ObjectId, f64)>, SolveStats, u64), SolverError>;

/// A failed task waiting in the retry queue.
#[derive(Clone, Copy, Debug)]
struct PendingTask {
    task: Task,
    /// Posting attempts so far (≥ 1; the task failed each of them).
    attempts: usize,
    /// First round (1-based) the task may be re-posted in, per the retry
    /// policy's backoff.
    eligible_round: usize,
}

/// Whether a failed task is still worth re-posting: propagation may have
/// decided everything its variables touch, in which case the answer would
/// be useless.
fn task_still_open(ctable: &CTable, task: &Task) -> bool {
    let vars: BTreeSet<VarId> = task.vars().collect();
    ctable
        .open_objects()
        .iter()
        .any(|&o| !ctable.condition(o).vars().is_disjoint(&vars))
}

/// The crowd-assisted skyline query engine.
#[derive(Clone, Debug)]
pub struct BayesCrowd {
    config: BayesCrowdConfig,
}

impl BayesCrowd {
    /// An engine with the given configuration.
    pub fn new(config: BayesCrowdConfig) -> BayesCrowd {
        BayesCrowd { config }
    }

    /// The configuration.
    pub fn config(&self) -> &BayesCrowdConfig {
        &self.config
    }

    /// Runs the full query (Algorithm 1): modeling phase, then the iterative
    /// crowdsourcing phase against `platform`, and returns the answer set
    /// with all measurements. Accuracy is computed against the skyline of
    /// the platform's ground truth, when it exposes one.
    ///
    /// The platform is any [`CrowdPlatform`] — tasks may come back expired
    /// or inconsistent, in which case the configured
    /// [`RetryPolicy`](bc_crowd::RetryPolicy) re-queues them under the same
    /// budget `B` and latency `L`. When both run out with tasks still
    /// unanswered the run *degrades* instead of failing: the c-table keeps
    /// its symbolic variables, answer probabilities come from the current
    /// posterior, and the report's `degraded`/`tasks_expired` fields say
    /// what was given up.
    ///
    /// This is the infallible convenience wrapper: it observes nothing
    /// (every event goes to a [`NoopObserver`]), skips configuration
    /// validation (degenerate configs like `budget: 0` run to a trivial
    /// report), recovers the degraded report from a
    /// [`RunError::PlatformExhausted`], and **panics** on the errors
    /// [`BayesCrowd::try_run`] would return (empty dataset, unrecoverable
    /// solver failure). Use `try_run` when those must be handled.
    pub fn run(&self, data: &Dataset, platform: &mut dyn CrowdPlatform) -> RunReport {
        let mut noop = NoopObserver;
        match self.run_inner(data, platform, &mut noop) {
            Ok(report) => report,
            Err(RunError::PlatformExhausted { report }) => *report,
            Err(e) => panic!("BayesCrowd::run failed: {e} (use try_run to handle errors)"),
        }
    }

    /// The fallible, observable run: like [`BayesCrowd::run`], but
    ///
    /// * the configuration is validated first
    ///   ([`RunError::Config`](RunError)),
    /// * an empty dataset and unrecoverable solver failures become typed
    ///   errors instead of panics,
    /// * a platform that answered nothing at all surfaces as
    ///   [`RunError::PlatformExhausted`] (with the degraded report
    ///   attached), and
    /// * every phase of the run streams structured [`Event`]s to
    ///   `observer` — pass `&mut NoopObserver` for none, a
    ///   [`bc_obs::JsonLinesSink`] for a trace file, or a
    ///   [`bc_obs::MetricsRecorder`] for in-memory aggregation.
    pub fn try_run(
        &self,
        data: &Dataset,
        platform: &mut dyn CrowdPlatform,
        observer: &mut dyn Observer,
    ) -> Result<RunReport, RunError> {
        self.config.validate()?;
        self.run_inner(data, platform, observer)
    }

    fn run_inner(
        &self,
        data: &Dataset,
        platform: &mut dyn CrowdPlatform,
        observer: &mut dyn Observer,
    ) -> Result<RunReport, RunError> {
        if data.n_objects() == 0 {
            return Err(RunError::EmptyDataset);
        }
        let t_start = Instant::now();
        observer.event(&Event::RunStarted {
            objects: data.n_objects(),
            attrs: data.n_attrs(),
            missing_vars: data.n_missing(),
            budget: self.config.budget,
            latency: self.config.latency,
        });

        // ---- Modeling phase --------------------------------------------
        let model_span = Span::start(RunPhase::Model);
        let (model, model_stats) = MissingValueModel::learn_with_stats(data, &self.config.model);
        let base_pmfs: BTreeMap<VarId, Pmf> = model.into_pmfs();
        let mut dists: VarDists = base_pmfs.iter().map(|(k, v)| (*k, v.clone())).collect();
        observer.event(&Event::ModelTrained {
            bic: model_stats.bic,
            edges: model_stats.edges,
            em_iters: model_stats.em_iters,
            nanos: model_span.elapsed_nanos(),
        });
        model_span.finish(observer);

        let ctable_span = Span::start(RunPhase::CTable);
        let (mut ctable, build_stats) = build_ctable_with_stats(data, &self.config.ctable_config());
        observer.event(&Event::CTableBuilt {
            objects: build_stats.objects,
            open_objects: build_stats.open,
            vars: build_stats.vars,
            exprs: build_stats.exprs,
            pruned: build_stats.pruned,
            nanos: ctable_span.elapsed_nanos(),
        });
        ctable_span.finish(observer);
        let modeling_time = t_start.elapsed();

        // ---- Crowdsourcing phase (Algorithm 4) --------------------------
        let solver = self.config.solver.build();
        let mut store = ConstraintStore::new(data);
        let mut budget = self.config.budget;
        let mu = self.config.tasks_per_round().max(1);
        let retry = self.config.retry;
        let mut evals: u64 = 0;

        // Failure bookkeeping. Latency is measured against the platform's
        // own round counter (a straggling platform may consume several
        // rounds per posted batch) plus locally idled backoff rounds.
        let rounds_before = platform.stats().rounds;
        let mut pending: Vec<PendingTask> = Vec::new();
        let mut tasks_expired = 0usize;
        let mut tasks_retried = 0usize;
        let mut rounds_stalled = 0usize;
        // Rounds spent posting nothing while queued tasks wait out their
        // backoff. They consume latency (a real campaign waits through
        // them) but never appear in the platform's round counter.
        let mut idle_rounds = 0usize;
        let mut round_idx = 0usize;
        // Totals for the RunFinished event and platform-exhaustion check.
        let mut total_posted = 0usize;
        let mut total_answered = 0usize;

        // Condition probabilities are cached across rounds: a round's
        // answers only change the distributions of the variables they asked
        // about, so only conditions mentioning those variables need
        // re-solving.
        let mut prob_cache: BTreeMap<ObjectId, f64> = BTreeMap::new();
        loop {
            if budget == 0 || ctable.n_open_exprs() == 0 {
                break;
            }
            if self.config.latency > 0
                && (platform.stats().rounds - rounds_before) + idle_rounds >= self.config.latency
            {
                break;
            }
            round_idx += 1;
            observer.event(&Event::RoundStarted { round: round_idx });
            let round_start = Instant::now();
            let limit = mu.min(budget);
            let select_span = Span::start(RunPhase::Select);

            // Re-posts come first: failed tasks whose backoff has elapsed
            // and whose answer is still useful (propagation may have decided
            // everything they touch in the meantime — those drop quietly).
            let mut batch: Vec<Task> = Vec::new();
            let mut attempts_in_batch: Vec<usize> = Vec::new();
            let mut waiting: Vec<PendingTask> = Vec::new();
            for p in pending.drain(..) {
                if !task_still_open(&ctable, &p.task) {
                    continue;
                }
                if p.eligible_round <= round_idx && batch.len() < limit {
                    batch.push(p.task);
                    attempts_in_batch.push(p.attempts);
                } else {
                    waiting.push(p);
                }
            }
            pending = waiting;
            let n_retries = batch.len();
            tasks_retried += n_retries;
            if n_retries > 0 && retry.escalate_workers > 0 {
                platform.escalate(retry.escalate_workers);
            }

            // Variables already spoken for: this round's re-posts and the
            // queued tasks still backing off. Fresh selection must not ask
            // about them a second time.
            let mut reserved: BTreeSet<VarId> = batch.iter().flat_map(|t| t.vars()).collect();
            reserved.extend(pending.iter().flat_map(|p| p.task.vars()));

            if batch.len() < limit {
                let open = ctable.open_objects();
                let stale: Vec<ObjectId> = open
                    .iter()
                    .copied()
                    .filter(|o| !prob_cache.contains_key(o))
                    .collect();
                let fresh = self.probabilities(
                    &ctable,
                    &stale,
                    solver.as_ref(),
                    &dists,
                    RunPhase::Select,
                    observer,
                )?;
                evals += fresh.len() as u64;
                prob_cache.extend(fresh);
                let probs: Vec<(ObjectId, f64)> =
                    open.iter().map(|o| (*o, prob_cache[o])).collect();
                let ranked = rank_objects(&probs, self.config.ranking);
                let fresh_tasks = assemble_round(
                    &ranked,
                    &ctable,
                    self.config.strategy,
                    solver.as_ref(),
                    &dists,
                    limit - batch.len(),
                    self.config.conflict_free,
                    &reserved,
                );
                attempts_in_batch.resize(batch.len() + fresh_tasks.len(), 0);
                batch.extend(fresh_tasks);
            }
            select_span.finish(observer);

            if batch.is_empty() {
                observer.event(&Event::RoundFinished {
                    round: round_idx,
                    posted: 0,
                    answered: 0,
                    expired: 0,
                    requeued: 0,
                    retried: 0,
                    nanos: round_start.elapsed().as_nanos(),
                });
                if pending.is_empty() {
                    break;
                }
                // Everything still owed is backing off: idle one round.
                idle_rounds += 1;
                rounds_stalled += 1;
                continue;
            }

            // Algorithm 4 line 8: B ← max(B − μ, 0). The full per-round
            // allowance is charged even if conflicts left some of it unused,
            // which is what bounds the number of rounds by L. Re-posts are
            // tasks like any other and consume the same allowance.
            budget = budget.saturating_sub(limit);

            let post_span = Span::start(RunPhase::Post);
            let results = platform.post_round(&batch);
            post_span.finish(observer);
            total_posted += batch.len();

            let mut answers: Vec<TaskAnswer> = Vec::with_capacity(batch.len());
            let mut round_expired = 0usize;
            let mut round_requeued = 0usize;
            for (i, task) in batch.iter().enumerate() {
                // Defensive against foreign platforms returning short result
                // vectors: a missing result is an expired task.
                let outcome = results
                    .get(i)
                    .map(|r| r.outcome)
                    .unwrap_or(TaskOutcome::Expired);
                match outcome {
                    TaskOutcome::Answered(relation) => answers.push(TaskAnswer {
                        task: *task,
                        relation,
                    }),
                    TaskOutcome::Expired | TaskOutcome::Inconsistent => {
                        let attempts = attempts_in_batch[i] + 1;
                        if attempts < retry.max_attempts {
                            round_requeued += 1;
                            pending.push(PendingTask {
                                task: *task,
                                attempts,
                                eligible_round: round_idx + 1 + retry.backoff_rounds(attempts),
                            });
                        } else {
                            round_expired += 1;
                        }
                    }
                }
            }
            tasks_expired += round_expired;
            total_answered += answers.len();
            if answers.is_empty() {
                rounds_stalled += 1;
            }
            let propagate_span = Span::start(RunPhase::Propagate);
            // Invalidate cached probabilities of conditions touching any
            // variable the round asked about (their pmfs and/or conditions
            // change below).
            let touched: std::collections::BTreeSet<VarId> =
                answers.iter().flat_map(|a| a.task.vars()).collect();
            prob_cache.retain(|o, _| {
                let cond = ctable.condition(*o);
                !cond.is_decided() && cond.vars().is_disjoint(&touched)
            });
            if self.config.propagate_answers {
                for a in &answers {
                    store.record(a.task.var, a.task.rhs, a.relation);
                }
                let prop_stats = ctable.propagate(&store);
                // Re-condition each touched variable's distribution on its
                // narrowed candidate set.
                for (var, base) in &base_pmfs {
                    let mask = store.mask(*var);
                    if let Some(pmf) = base.conditioned(mask) {
                        dists.insert(*var, pmf);
                    }
                }
                observer.event(&Event::Propagated {
                    answers: answers.len(),
                    decided: prop_stats.decided,
                    depth: prop_stats.max_depth,
                    nanos: propagate_span.elapsed_nanos(),
                });
            } else {
                // Ablation: an answer only settles the exact expression it
                // was derived from — no cross-condition inference.
                let answered: BTreeMap<Task, Relation> =
                    answers.iter().map(|a| (a.task, a.relation)).collect();
                for o in data.objects() {
                    let cond = ctable.condition(o);
                    if cond.is_decided() {
                        continue;
                    }
                    let simplified = cond.simplify(|e| {
                        answered
                            .get(&Task::from_expr(e))
                            .map(|&rel| expr_truth(e.op(), rel))
                    });
                    ctable.set_condition(o, simplified);
                }
            }
            propagate_span.finish(observer);
            observer.event(&Event::RoundFinished {
                round: round_idx,
                posted: batch.len(),
                answered: answers.len(),
                expired: round_expired,
                requeued: round_requeued,
                retried: n_retries,
                nanos: round_start.elapsed().as_nanos(),
            });
        }

        // Tasks still queued (and still useful) when budget or latency ran
        // out never got their answer: graceful degradation, not an error.
        let tasks_abandoned = pending
            .iter()
            .filter(|p| task_still_open(&ctable, &p.task))
            .count();
        tasks_expired += tasks_abandoned;
        if tasks_abandoned > 0 {
            observer.event(&Event::Degraded { tasks_abandoned });
        }
        let degraded = tasks_expired > 0;

        // ---- Derive the answer set --------------------------------------
        // Open conditions keep their symbolic variables; their objects are
        // judged by the probability under the current posterior, exactly as
        // in a fully-budgeted run that simply stopped earlier. Cached
        // probabilities are still valid (invalidation dropped everything a
        // crowd answer touched), so only stale conditions are re-solved.
        let finalize_span = Span::start(RunPhase::Finalize);
        let open = ctable.open_objects();
        let stale: Vec<ObjectId> = open
            .iter()
            .copied()
            .filter(|o| !prob_cache.contains_key(o))
            .collect();
        let fresh = self.probabilities(
            &ctable,
            &stale,
            solver.as_ref(),
            &dists,
            RunPhase::Finalize,
            observer,
        )?;
        evals += fresh.len() as u64;
        prob_cache.extend(fresh);
        let certain = ctable.certain_answers();
        let mut result = certain.clone();
        let mut open_probabilities = BTreeMap::new();
        for o in open {
            let p = prob_cache[&o];
            open_probabilities.insert(o, p);
            if p > self.config.answer_threshold {
                result.push(o);
            }
        }
        result.sort_unstable();
        finalize_span.finish(observer);

        let truth = platform
            .ground_truth()
            .and_then(|complete| bc_data::skyline::skyline_sfs(complete).ok());
        let accuracy = truth.map(|t| Accuracy::of(&result, &t));

        let report = RunReport {
            result,
            certain,
            open_probabilities,
            accuracy,
            crowd: platform.stats(),
            budget_left: budget,
            modeling_time,
            total_time: t_start.elapsed(),
            probability_evals: evals,
            open_exprs_left: ctable.n_open_exprs(),
            tasks_expired,
            tasks_retried,
            rounds_stalled,
            degraded,
        };
        observer.event(&Event::RunFinished {
            rounds: report.crowd.rounds,
            tasks_posted: report.crowd.tasks_posted,
            tasks_answered: total_answered,
            tasks_expired: report.tasks_expired,
            tasks_retried: report.tasks_retried,
            probability_evals: report.probability_evals,
            nanos: t_start.elapsed().as_nanos(),
        });

        // A platform that swallowed every single task is indistinguishable
        // from no crowd at all: surface it as an error with the degraded
        // report attached (the trace above is already complete).
        if total_posted > 0 && total_answered == 0 && report.open_exprs_left > 0 {
            return Err(RunError::PlatformExhausted {
                report: Box::new(report),
            });
        }
        Ok(report)
    }

    /// Per-object condition probabilities, optionally in parallel, emitting
    /// one [`Event::ProbabilityBatch`] per non-empty batch. Solver errors
    /// (e.g. the naive enumerator's state cap) fall back to ADPLL; an error
    /// that survives the fallback aborts the run as [`RunError::Solver`].
    fn probabilities(
        &self,
        ctable: &CTable,
        objects: &[ObjectId],
        solver: &dyn Solver,
        dists: &VarDists,
        phase: RunPhase,
        observer: &mut dyn Observer,
    ) -> Result<Vec<(ObjectId, f64)>, RunError> {
        if objects.is_empty() {
            return Ok(Vec::new());
        }
        let t = Instant::now();
        let (out, stats, solver_calls) = self.solve_batch(ctable, objects, solver, dists)?;
        observer.event(&Event::ProbabilityBatch {
            phase,
            objects: objects.len(),
            solver_calls,
            branches: stats.branches,
            cache_hits: stats.cache_hits,
            nanos: t.elapsed().as_nanos(),
        });
        Ok(out)
    }

    fn solve_batch(
        &self,
        ctable: &CTable,
        objects: &[ObjectId],
        solver: &dyn Solver,
        dists: &VarDists,
    ) -> SolvedBatch {
        // One worker's share: solve sequentially, attributing per-call
        // effort via snapshot diffs and counting fallback re-solves.
        fn solve_chunk(
            ctable: &CTable,
            objects: &[ObjectId],
            solver: &dyn Solver,
            dists: &VarDists,
        ) -> SolvedBatch {
            let mut out = Vec::with_capacity(objects.len());
            let mut stats = SolveStats::default();
            let mut calls = 0u64;
            for &o in objects {
                let cond = ctable.condition(o);
                calls += 1;
                let (p, s) = match solver.probability_with_stats(cond, dists) {
                    Ok(solved) => solved,
                    Err(_) => {
                        calls += 1;
                        AdpllSolver::new().probability_with_stats(cond, dists)?
                    }
                };
                stats += s;
                out.push((o, p));
            }
            Ok((out, stats, calls))
        }

        if self.config.parallel && objects.len() > 64 && self.config.solver == SolverKind::Adpll {
            let n_threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(objects.len());
            let chunk = objects.len().div_ceil(n_threads);
            let mut out: Vec<(ObjectId, f64)> = Vec::with_capacity(objects.len());
            let mut stats = SolveStats::default();
            let mut calls = 0u64;
            let mut first_err: Option<SolverError> = None;
            std::thread::scope(|s| {
                let handles: Vec<_> = objects
                    .chunks(chunk)
                    .map(|slice| {
                        s.spawn(move || {
                            let local = AdpllSolver::new();
                            solve_chunk(ctable, slice, &local, dists)
                        })
                    })
                    .collect();
                for h in handles {
                    match h.join().expect("probability worker panicked") {
                        Ok((chunk_out, chunk_stats, chunk_calls)) => {
                            out.extend(chunk_out);
                            stats += chunk_stats;
                            calls += chunk_calls;
                        }
                        Err(e) => first_err = first_err.take().or(Some(e)),
                    }
                }
            });
            match first_err {
                Some(e) => Err(e),
                None => Ok((out, stats, calls)),
            }
        } else {
            solve_chunk(ctable, objects, solver, dists)
        }
    }
}

/// Truth of an expression `var op rhs` given the answered relation of
/// `var` to `rhs`.
fn expr_truth(op: CmpOp, rel: Relation) -> bool {
    match op {
        CmpOp::Lt => rel == Relation::Lt,
        CmpOp::Le => rel != Relation::Gt,
        CmpOp::Gt => rel == Relation::Gt,
        CmpOp::Ge => rel != Relation::Lt,
        CmpOp::Eq => rel == Relation::Eq,
        CmpOp::Ne => rel != Relation::Eq,
    }
}

/// Convenience used by tests and examples: the answer set a machine-only
/// pass would return (no crowdsourcing at all) — certain answers plus
/// high-probability open objects.
pub fn machine_only_answers(data: &Dataset, config: &BayesCrowdConfig) -> (Vec<ObjectId>, CTable) {
    let model = MissingValueModel::learn(data, &config.model);
    let dists: VarDists = model.pmfs().iter().map(|(k, v)| (*k, v.clone())).collect();
    let ctable = build_ctable(data, &config.ctable_config());
    let solver = AdpllSolver::new();
    let mut result = ctable.certain_answers();
    for o in ctable.open_objects() {
        let p = solver
            .probability(ctable.condition(o), &dists)
            .unwrap_or(0.0);
        if p > config.answer_threshold {
            result.push(o);
        }
    }
    result.sort_unstable();
    (result, ctable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::TaskStrategy;
    use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
    use bc_data::generators::sample::{paper_completion, paper_dataset};

    fn sample_config(strategy: TaskStrategy) -> BayesCrowdConfig {
        BayesCrowdConfig {
            budget: 6,
            latency: 3,
            alpha: 1.0,
            strategy,
            ..Default::default()
        }
    }

    fn run_sample(strategy: TaskStrategy, accuracy: f64, seed: u64) -> RunReport {
        let data = paper_dataset();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, accuracy, seed);
        BayesCrowd::new(sample_config(strategy)).run(&data, &mut platform)
    }

    #[test]
    fn paper_example_4_setting_respects_budget_and_latency() {
        // Budget 6, latency 3 → 2 tasks per round, HHS with m = 2, perfect
        // workers (the paper's Example 4 setting). Which tasks get asked
        // depends on tie-breaks, so the guaranteed properties are the
        // budget/latency bounds and a high-quality answer.
        let report = run_sample(TaskStrategy::Hhs { m: 2 }, 1.0, 7);
        assert!(report.crowd.tasks_posted <= 6);
        assert!(report.crowd.rounds <= 3);
        assert!(report.accuracy.unwrap().f1 >= 0.8, "{}", report.summary());
        // The two machine-certain answers are always present.
        assert!(report.result.contains(&ObjectId(1)));
        assert!(report.result.contains(&ObjectId(2)));
    }

    #[test]
    fn ample_budget_resolves_the_sample_exactly() {
        let data = paper_dataset();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 7);
        let config = BayesCrowdConfig {
            budget: 20,
            latency: 10,
            ..sample_config(TaskStrategy::Hhs { m: 2 })
        };
        let report = BayesCrowd::new(config).run(&data, &mut platform);
        assert_eq!(
            report.result,
            vec![ObjectId(0), ObjectId(1), ObjectId(2), ObjectId(4)]
        );
        assert_eq!(report.accuracy.unwrap().f1, 1.0);
        assert_eq!(report.open_exprs_left, 0, "{}", report.summary());
    }

    #[test]
    fn all_strategies_solve_the_sample() {
        for strategy in [
            TaskStrategy::Fbs,
            TaskStrategy::Ubs,
            TaskStrategy::Hhs { m: 2 },
        ] {
            let data = paper_dataset();
            let oracle = GroundTruthOracle::new(paper_completion());
            let mut platform = SimulatedPlatform::new(oracle, 1.0, 11);
            let config = BayesCrowdConfig {
                budget: 20,
                latency: 10,
                ..sample_config(strategy)
            };
            let report = BayesCrowd::new(config).run(&data, &mut platform);
            assert_eq!(
                report.accuracy.unwrap().f1,
                1.0,
                "{} failed: {}",
                strategy.name(),
                report.summary()
            );
        }
    }

    #[test]
    fn zero_budget_posts_nothing() {
        let data = paper_dataset();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 3);
        let config = BayesCrowdConfig {
            budget: 0,
            ..sample_config(TaskStrategy::Fbs)
        };
        let report = BayesCrowd::new(config).run(&data, &mut platform);
        assert_eq!(report.crowd.tasks_posted, 0);
        assert_eq!(report.crowd.rounds, 0);
        // o2/o3 are certain regardless.
        assert!(report.certain.contains(&ObjectId(1)));
        assert!(report.certain.contains(&ObjectId(2)));
    }

    #[test]
    fn budget_is_respected() {
        let report = run_sample(TaskStrategy::Fbs, 1.0, 5);
        assert!(report.crowd.tasks_posted + report.budget_left <= 6);
    }

    #[test]
    fn latency_bounds_round_size() {
        // Budget 6, latency 2 → at most 3 tasks per round.
        let data = paper_dataset();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 5);
        let config = BayesCrowdConfig {
            budget: 6,
            latency: 2,
            ..sample_config(TaskStrategy::Fbs)
        };
        let report = BayesCrowd::new(config).run(&data, &mut platform);
        assert!(report.crowd.rounds <= 3, "{}", report.summary());
    }

    #[test]
    fn noisy_workers_still_usually_work_on_the_sample() {
        // With accuracy 0.9, majority voting, and an ample budget the sample
        // usually resolves; across seeds the average F1 must stay high.
        let mut total = 0.0;
        for seed in 0..20 {
            let data = paper_dataset();
            let oracle = GroundTruthOracle::new(paper_completion());
            let mut platform = SimulatedPlatform::new(oracle, 0.9, seed);
            let config = BayesCrowdConfig {
                budget: 20,
                latency: 10,
                ..sample_config(TaskStrategy::Hhs { m: 2 })
            };
            total += BayesCrowd::new(config)
                .run(&data, &mut platform)
                .accuracy
                .unwrap()
                .f1;
        }
        assert!(total / 20.0 > 0.85, "avg f1 = {}", total / 20.0);
    }

    #[test]
    fn machine_only_pass_returns_probable_answers() {
        let data = paper_dataset();
        let (answers, ctable) = machine_only_answers(&data, &sample_config(TaskStrategy::Fbs));
        // o2, o3 certain; o1 and o5 have probability > 0.5 under uniform-ish
        // priors (φ(o1) ≈ 0.9+, φ(o5) ≈ 0.8).
        assert!(answers.contains(&ObjectId(1)));
        assert!(answers.contains(&ObjectId(2)));
        assert_eq!(ctable.open_objects().len(), 3);
    }

    #[test]
    fn expr_truth_table() {
        use CmpOp::*;
        assert!(expr_truth(Lt, Relation::Lt));
        assert!(!expr_truth(Lt, Relation::Eq));
        assert!(expr_truth(Le, Relation::Eq));
        assert!(expr_truth(Gt, Relation::Gt));
        assert!(!expr_truth(Gt, Relation::Eq));
        assert!(expr_truth(Ge, Relation::Eq));
        assert!(expr_truth(Eq, Relation::Eq));
        assert!(expr_truth(Ne, Relation::Gt));
    }

    #[test]
    fn propagation_ablation_resolves_less_per_budget() {
        // Statistically, cross-condition inference (constraint propagation)
        // resolves more expressions for the same budget than deciding only
        // the asked expression. On any single instance task selection may
        // diverge and luck can win, so the claim is tested in aggregate on a
        // non-trivial workload.
        let complete = bc_data::generators::classic::correlated(80, 4, 8, 0.7, 31);
        let (data, _) = bc_data::missing::inject_mcar(&complete, 0.2, 32);
        let run = |propagate: bool, seed: u64| {
            let oracle = GroundTruthOracle::new(complete.clone());
            let mut platform = SimulatedPlatform::new(oracle, 1.0, seed);
            let config = BayesCrowdConfig {
                budget: 20,
                latency: 5,
                alpha: 1.0,
                propagate_answers: propagate,
                strategy: TaskStrategy::Fbs,
                ..Default::default()
            };
            BayesCrowd::new(config).run(&data, &mut platform)
        };
        let mut with_total = 0usize;
        let mut without_total = 0usize;
        for seed in 0..6 {
            with_total += run(true, seed).open_exprs_left;
            without_total += run(false, seed).open_exprs_left;
        }
        assert!(
            with_total <= without_total,
            "propagation should resolve at least as much: {with_total} vs {without_total}"
        );
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let data = paper_dataset();
        let mk = |parallel: bool| {
            let oracle = GroundTruthOracle::new(paper_completion());
            let mut platform = SimulatedPlatform::new(oracle, 1.0, 9);
            let config = BayesCrowdConfig {
                parallel,
                ..sample_config(TaskStrategy::Fbs)
            };
            BayesCrowd::new(config).run(&data, &mut platform)
        };
        let a = mk(false);
        let b = mk(true);
        assert_eq!(a.result, b.result);
        assert_eq!(a.crowd.tasks_posted, b.crowd.tasks_posted);
        // Chunking must not change how often conditions are solved.
        assert_eq!(a.probability_evals, b.probability_evals);
    }

    /// A platform that accepts every task and answers none of them.
    struct BlackHolePlatform {
        stats: bc_crowd::CrowdStats,
    }

    impl BlackHolePlatform {
        fn new() -> BlackHolePlatform {
            BlackHolePlatform {
                stats: bc_crowd::CrowdStats::default(),
            }
        }
    }

    impl CrowdPlatform for BlackHolePlatform {
        fn post_round(&mut self, tasks: &[Task]) -> Vec<bc_crowd::TaskResult> {
            self.stats.tasks_posted += tasks.len();
            self.stats.rounds += 1;
            tasks
                .iter()
                .map(|&task| bc_crowd::TaskResult {
                    task,
                    outcome: TaskOutcome::Expired,
                })
                .collect()
        }

        fn stats(&self) -> bc_crowd::CrowdStats {
            self.stats
        }
    }

    #[test]
    fn finalize_reuses_cached_probabilities() {
        // When no crowd answer arrives, no variable distribution changes, so
        // every condition probability computed during task selection is
        // still valid at finalize: each open object must be solved exactly
        // once across the whole run, and the finalize phase must not emit a
        // probability batch at all.
        let data = paper_dataset();
        let mut platform = BlackHolePlatform::new();
        let mut metrics = bc_obs::MetricsRecorder::new();
        let err = BayesCrowd::new(sample_config(TaskStrategy::Fbs))
            .try_run(&data, &mut platform, &mut metrics)
            .unwrap_err();
        let report = match err {
            RunError::PlatformExhausted { report } => *report,
            other => panic!("expected PlatformExhausted, got {other}"),
        };
        let n_open = report.open_probabilities.len();
        assert!(n_open > 0);
        assert_eq!(report.probability_evals, n_open as u64);
        let finalize_batches = metrics
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::ProbabilityBatch {
                        phase: RunPhase::Finalize,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(finalize_batches, 0, "finalize re-solved a warm cache");
    }

    #[test]
    fn run_recovers_the_report_when_the_platform_is_exhausted() {
        // The infallible wrapper must not panic on PlatformExhausted — the
        // degraded machine-only report is a usable answer.
        let data = paper_dataset();
        let mut platform = BlackHolePlatform::new();
        let report = BayesCrowd::new(sample_config(TaskStrategy::Fbs)).run(&data, &mut platform);
        assert!(report.crowd.tasks_posted > 0);
        assert!(report.degraded);
        assert!(report.certain.contains(&ObjectId(1)));
    }

    #[test]
    fn try_run_rejects_an_empty_dataset() {
        let domain = bc_data::Domain::new("a", 4).unwrap();
        let data = Dataset::from_rows("empty", vec![domain], vec![]).unwrap();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 1);
        let err = BayesCrowd::new(sample_config(TaskStrategy::Fbs))
            .try_run(&data, &mut platform, &mut NoopObserver)
            .unwrap_err();
        assert!(matches!(err, RunError::EmptyDataset), "{err}");
    }

    #[test]
    fn try_run_rejects_an_invalid_config() {
        // Struct-literal construction deliberately skips validation (the
        // zero-budget ablation above depends on it); try_run re-checks.
        let data = paper_dataset();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 1);
        let config = BayesCrowdConfig {
            budget: 0,
            ..sample_config(TaskStrategy::Fbs)
        };
        let err = BayesCrowd::new(config)
            .try_run(&data, &mut platform, &mut NoopObserver)
            .unwrap_err();
        assert!(
            matches!(
                err,
                RunError::Config(crate::config::ConfigError::ZeroBudget)
            ),
            "{err}"
        );
    }

    #[test]
    fn try_run_report_matches_run() {
        let data = paper_dataset();
        let mk_platform = || {
            let oracle = GroundTruthOracle::new(paper_completion());
            SimulatedPlatform::new(oracle, 1.0, 7)
        };
        let config = sample_config(TaskStrategy::Hhs { m: 2 });
        let via_run = BayesCrowd::new(config.clone()).run(&data, &mut mk_platform());
        let via_try = BayesCrowd::new(config)
            .try_run(&data, &mut mk_platform(), &mut NoopObserver)
            .unwrap();
        assert_eq!(via_run.result, via_try.result);
        assert_eq!(via_run.probability_evals, via_try.probability_evals);
        assert_eq!(via_run.crowd.tasks_posted, via_try.crowd.tasks_posted);
    }
}
