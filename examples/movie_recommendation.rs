//! Movie-recommendation scenario from the paper's introduction.
//!
//! A catalogue of movies is rated by a panel of audiences, but most viewers
//! have only seen some of the movies, so the rating matrix is incomplete.
//! The skyline (movies no other movie beats on every rating) drives the
//! recommendation page. We compare a machine-only answer against
//! BayesCrowd with a modest crowdsourcing budget.
//!
//! ```text
//! cargo run --release --example movie_recommendation
//! ```

use bayescrowd::framework::machine_only_answers;
use bayescrowd::{BayesCrowd, BayesCrowdConfig, TaskStrategy};
use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
use bc_data::generators::classic::correlated;
use bc_data::missing::inject_mcar;
use bc_data::{skyline::skyline_sfs, Accuracy};

fn main() {
    // 400 movies, 6 audience groups, ratings 0..9; tastes correlate (good
    // movies are broadly liked) — exactly when the Bayesian network helps.
    let complete = correlated(400, 6, 10, 0.6, 2024);
    let (incomplete, hidden) = inject_mcar(&complete, 0.15, 7);
    println!(
        "catalogue: {} movies × {} audiences, {} ratings missing ({:.0}%)",
        complete.n_objects(),
        complete.n_attrs(),
        hidden.len(),
        incomplete.missing_rate() * 100.0
    );
    let truth = skyline_sfs(&complete).expect("complete data");
    println!("true skyline size: {}", truth.len());

    let config = BayesCrowdConfig::builder()
        .budget(60)
        .latency(6)
        .alpha(0.2)
        .strategy(TaskStrategy::Hhs { m: 10 })
        .build()
        .expect("the example configuration is valid");

    // Machine-only: no crowd at all, answer from the learned distributions.
    let (machine, _) = machine_only_answers(&incomplete, &config);
    let macc = Accuracy::of(&machine, &truth);
    println!(
        "\nmachine only:   {} answers, F1 = {:.3} (precision {:.3}, recall {:.3})",
        machine.len(),
        macc.f1,
        macc.precision,
        macc.recall
    );

    // BayesCrowd: ask the crowd the most informative questions.
    let oracle = GroundTruthOracle::new(complete.clone());
    let mut platform = SimulatedPlatform::new(oracle, 0.95, 11);
    let report = BayesCrowd::new(config).run(&incomplete, &mut platform);
    let acc = report.accuracy.expect("ground truth available");
    println!(
        "with the crowd: {} answers, F1 = {:.3} (precision {:.3}, recall {:.3})",
        report.result.len(),
        acc.f1,
        acc.precision,
        acc.recall
    );
    println!(
        "crowd cost: {} tasks over {} rounds ({} worker answers at 95% accuracy)",
        report.crowd.tasks_posted, report.crowd.rounds, report.crowd.worker_answers
    );
    assert!(
        acc.f1 >= macc.f1 - 0.05,
        "crowdsourcing should not hurt accuracy"
    );

    println!("\nsample questions the crowd answered:");
    for ta in platform.log().iter().take(5) {
        println!("  {} → {:?}", ta.task.question(), ta.relation);
    }
}
