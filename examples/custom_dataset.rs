//! Bringing your own data: continuous values, mixed preference directions,
//! and the CSV dialect.
//!
//! A hotel-booking scenario: price (lower is better), rating, and distance
//! to the beach (lower is better) are continuous; some cells are unknown.
//! The pipeline is: discretize → reflect minimized attributes → query.
//!
//! ```text
//! cargo run --example custom_dataset
//! ```

use bayescrowd::framework::machine_only_answers;
use bayescrowd::BayesCrowdConfig;
use bc_bayes::discretize::{discretize_rows, Binning};
use bc_data::csv::to_csv;
use bc_data::preference::{normalize_directions, Direction};

fn main() {
    // Raw continuous data: price ($), rating (stars), beach distance (km).
    // `None` = the aggregator has no value yet.
    let raw: Vec<Vec<Option<f64>>> = vec![
        vec![Some(120.0), Some(4.5), Some(0.3)],
        vec![Some(85.0), Some(4.1), None],
        vec![Some(300.0), Some(4.9), Some(0.1)],
        vec![Some(95.0), None, Some(2.5)],
        vec![Some(150.0), Some(3.2), Some(0.4)],
        vec![None, Some(4.0), Some(1.0)],
        vec![Some(70.0), Some(3.9), Some(3.0)],
        vec![Some(210.0), Some(4.8), None],
    ];
    let names = [
        "Seaview",
        "Budget Inn",
        "Grand Palace",
        "City Stop",
        "Harbor",
        "Mystery Deal",
        "Backpacker",
        "Royal Sands",
    ];

    // 1. Discretize each column into 8 ranges (equi-depth handles the
    //    skewed price distribution gracefully).
    let discrete =
        discretize_rows("hotels", &raw, 8, Binning::EquiDepth).expect("well-formed raw table");

    // 2. Price and distance are minimized; reflect them so the standard
    //    larger-is-better skyline applies.
    let directions = [
        Direction::Minimize,
        Direction::Maximize,
        Direction::Minimize,
    ];
    let normalized =
        normalize_directions(&discrete, &directions).expect("one direction per attribute");

    println!("normalized dataset (CSV dialect):\n{}", to_csv(&normalized));

    // 3. Machine-only skyline answer from the learned distributions (with a
    //    catalogue this small a crowd round would finish it; see the
    //    `quickstart` example for the crowd loop).
    let config = BayesCrowdConfig {
        alpha: 1.0,
        ..Default::default()
    };
    let (answers, ctable) = machine_only_answers(&normalized, &config);
    println!("recommended (skyline) hotels:");
    for o in &answers {
        println!("  {} — {}", o, names[o.index()]);
    }
    println!(
        "{} certain, {} awaiting data or crowdsourcing",
        ctable.certain_answers().len(),
        ctable.open_objects().len()
    );
    for o in ctable.open_objects() {
        println!(
            "  open: {} — condition {}",
            names[o.index()],
            ctable.condition(o)
        );
    }
}
