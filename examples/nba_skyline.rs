//! Strategy comparison on the NBA-like workload.
//!
//! Runs the three task-selection strategies (FBS, UBS, HHS) with the
//! paper's NBA defaults on an NBA-like dataset and prints the trade-off the
//! paper reports: FBS fastest, UBS most accurate, HHS in between.
//!
//! ```text
//! cargo run --release --example nba_skyline
//! ```

use bayescrowd::{BayesCrowd, BayesCrowdConfig, TaskStrategy};
use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
use bc_data::generators::nba::nba_like;
use bc_data::missing::inject_mcar;

fn main() {
    let n = 1_000;
    let complete = nba_like(n, 99);
    let (incomplete, _) = inject_mcar(&complete, 0.1, 100);
    println!(
        "NBA-like dataset: {} player seasons × {} statistics, missing rate {:.0}%",
        n,
        complete.n_attrs(),
        incomplete.missing_rate() * 100.0
    );

    println!(
        "\n{:<6} {:>9} {:>7} {:>7} {:>10} {:>7}",
        "strat", "time(ms)", "tasks", "rounds", "answers", "F1"
    );
    for (name, strategy) in [
        ("FBS", TaskStrategy::Fbs),
        ("UBS", TaskStrategy::Ubs),
        ("HHS", TaskStrategy::Hhs { m: 15 }),
    ] {
        let config = BayesCrowdConfig::nba_defaults()
            .into_builder()
            .budget(50)
            .latency(5)
            .alpha(0.02)
            .strategy(strategy)
            .parallel(true)
            .build()
            .expect("the NBA preset is valid");
        let oracle = GroundTruthOracle::new(complete.clone());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 5);
        let report = BayesCrowd::new(config).run(&incomplete, &mut platform);
        println!(
            "{:<6} {:>9.1} {:>7} {:>7} {:>10} {:>7.3}",
            name,
            report.total_time.as_secs_f64() * 1e3,
            report.crowd.tasks_posted,
            report.crowd.rounds,
            report.result.len(),
            report.accuracy.map(|a| a.f1).unwrap_or(f64::NAN)
        );
    }
}
