//! Quickstart: the paper's running example, end to end.
//!
//! Reproduces Tables 1, 3, 4 and the Example 4 crowdsourcing run on the
//! five-movie sample dataset, printing every intermediate artifact.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bayescrowd::prelude::*;
use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
use bc_ctable::dominators::DominatorIndex;
use bc_ctable::{build_ctable, CTableConfig, DominatorStrategy};
use bc_data::generators::sample::{paper_completion, paper_dataset};

fn main() {
    // ---- Table 1: the sample dataset -----------------------------------
    let data = paper_dataset();
    println!(
        "Table 1 — the sample dataset ({} movies, {} audiences):",
        data.n_objects(),
        data.n_attrs()
    );
    let names = [
        "Schindler's List",
        "Se7en",
        "The Godfather",
        "The Lion King",
        "Star Wars",
    ];
    for o in data.objects() {
        let cells: Vec<String> = data
            .row(o)
            .iter()
            .map(|c| match c {
                Some(v) => v.to_string(),
                None => "?".into(),
            })
            .collect();
        println!("  {o}  {:<18} {}", names[o.index()], cells.join(" "));
    }

    // ---- Table 4: dominator sets ----------------------------------------
    println!("\nTable 4 — dominator sets:");
    let index = DominatorIndex::build(&data);
    for o in data.objects() {
        let dom: Vec<String> = index
            .dominator_set(&data, o)
            .iter()
            .map(|i| format!("o{i}"))
            .collect();
        println!("  D({o}) = {{{}}}", dom.join(", "));
    }

    // ---- Table 3: the c-table -------------------------------------------
    println!("\nTable 3 — the c-table:");
    let ctable = build_ctable(
        &data,
        &CTableConfig {
            alpha: 1.0,
            strategy: DominatorStrategy::FastIndex,
        },
    );
    for (o, cond) in ctable.iter() {
        println!("  φ({o}) = {cond}");
    }

    // ---- The crowdsourcing phase (Example 4, with an ample budget) -------
    println!("\nCrowdsourcing with budget 20, latency 10, HHS(m = 2):");
    let oracle = GroundTruthOracle::new(paper_completion());
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 42);
    let config = BayesCrowdConfig::builder()
        .budget(20)
        .latency(10)
        .alpha(1.0)
        .strategy(TaskStrategy::Hhs { m: 2 })
        .build()
        .expect("the quickstart configuration is valid");
    // Record the run's structured events alongside the report.
    let mut metrics = MetricsRecorder::new();
    let report = BayesCrowd::new(config)
        .try_run(&data, &mut platform, &mut metrics)
        .expect("the sample run succeeds");

    for (i, ta) in platform.log().iter().enumerate() {
        println!(
            "  task {}: {}  →  {:?}",
            i + 1,
            ta.task.question(),
            ta.relation
        );
    }
    println!("\nResult set R = {:?}", report.result);
    println!("{}", report.summary());
    let acc = report.accuracy.expect("oracle provides ground truth");
    println!(
        "precision = {:.3}, recall = {:.3}, F1 = {:.3}",
        acc.precision, acc.recall, acc.f1
    );

    // ---- What the observability layer saw --------------------------------
    println!("\nRun metrics:\n{}", metrics.summary());
}
