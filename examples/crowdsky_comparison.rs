//! Head-to-head with the CrowdSky baseline (the paper's Section 7.3).
//!
//! Uses the CrowdSky-compatible setting — two attributes entirely missing,
//! the rest complete — and compares tasks, rounds, machine time, and F1
//! between CrowdSky and BayesCrowd-HHS at the same 20-tasks-per-round rate.
//!
//! ```text
//! cargo run --release --example crowdsky_comparison
//! ```

use bayescrowd::{BayesCrowd, BayesCrowdConfig, TaskStrategy};
use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
use bc_data::generators::nba::nba_like;
use bc_data::missing::mask_attributes;
use bc_data::AttrId;
use crowdsky::{CrowdSky, CrowdSkyConfig};

fn main() {
    let n = 500;
    let complete = nba_like(n, 77);
    let d = complete.n_attrs() as u16;
    let incomplete = mask_attributes(&complete, &[AttrId(d - 2), AttrId(d - 1)]);
    println!(
        "workload: {} records, {} observed + 2 crowd attributes",
        n,
        d - 2
    );

    // CrowdSky: collect every needed pairwise preference.
    let oracle = GroundTruthOracle::new(complete.clone());
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 3);
    let cs = CrowdSky::new(CrowdSkyConfig { round_size: 20 }).run(&incomplete, &mut platform);
    println!(
        "\nCrowdSky:   {:>6} tasks {:>5} rounds {:>9.1} ms  F1 = {:.3} ({} layers, {} pairs)",
        cs.crowd.tasks_posted,
        cs.crowd.rounds,
        cs.total_time.as_secs_f64() * 1e3,
        cs.accuracy.map(|a| a.f1).unwrap_or(f64::NAN),
        cs.n_layers,
        cs.n_pairs
    );

    // BayesCrowd: infer across conditions, ask only what matters.
    let budget = 100_000;
    let config = BayesCrowdConfig::nba_defaults()
        .into_builder()
        .budget(budget)
        .latency(budget / 20) // 20 tasks per round, effectively unbounded budget
        .alpha(0.06)
        .strategy(TaskStrategy::Hhs { m: 15 })
        .parallel(true)
        .build()
        .expect("the comparison configuration is valid");
    let oracle = GroundTruthOracle::new(complete.clone());
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 3);
    let bc = BayesCrowd::new(config).run(&incomplete, &mut platform);
    println!(
        "BayesCrowd: {:>6} tasks {:>5} rounds {:>9.1} ms  F1 = {:.3}",
        bc.crowd.tasks_posted,
        bc.crowd.rounds,
        bc.total_time.as_secs_f64() * 1e3,
        bc.accuracy.map(|a| a.f1).unwrap_or(f64::NAN)
    );

    let task_ratio = cs.crowd.tasks_posted as f64 / bc.crowd.tasks_posted.max(1) as f64;
    let round_ratio = cs.crowd.rounds as f64 / bc.crowd.rounds.max(1) as f64;
    println!("\nBayesCrowd needs {task_ratio:.1}× fewer tasks and {round_ratio:.1}× fewer rounds.");
}
