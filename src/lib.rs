#![warn(missing_docs)]
//! Umbrella crate re-exporting the BayesCrowd reproduction workspace.
//!
//! See the individual crates for the substance:
//! [`bc_data`], [`bc_bayes`], [`bc_ctable`], [`bc_solver`], [`bc_crowd`],
//! [`bayescrowd`], and [`crowdsky`].

pub use bayescrowd;
pub use bc_bayes;
pub use bc_crowd;
pub use bc_ctable;
pub use bc_data;
pub use bc_solver;
pub use crowdimpute;
pub use crowdsky;
