//! Command-line front end for crowd-assisted skyline queries.
//!
//! ```text
//! # Machine-only pass over an incomplete CSV (see bc_data::csv for the
//! # format): prints certain answers and per-object probabilities.
//! bayescrowd-cli machine --data movies.csv
//!
//! # Full simulated crowdsourcing run (the hidden complete CSV plays the
//! # crowd): prints the answer set, cost, and accuracy.
//! bayescrowd-cli simulate --data movies.csv --complete movies_full.csv \
//!     --budget 50 --latency 5 --alpha 0.01 --strategy hhs --m 15 \
//!     --worker-accuracy 0.95 --seed 42
//! ```

use bayescrowd::framework::machine_only_answers;
use bayescrowd::{BayesCrowd, BayesCrowdConfig, TaskStrategy};
use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
use bc_data::csv::parse_csv;
use bc_data::Dataset;
use std::process::exit;

struct Args {
    mode: String,
    data: Option<String>,
    complete: Option<String>,
    budget: usize,
    latency: usize,
    alpha: f64,
    strategy: String,
    m: usize,
    worker_accuracy: f64,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: bayescrowd-cli <machine|simulate> --data FILE.csv \
         [--complete FILE.csv] [--budget N] [--latency N] [--alpha F] \
         [--strategy fbs|ubs|hhs] [--m N] [--worker-accuracy F] [--seed N]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        mode: String::new(),
        data: None,
        complete: None,
        budget: 50,
        latency: 5,
        alpha: 0.01,
        strategy: "hhs".into(),
        m: 15,
        worker_accuracy: 1.0,
        seed: 42,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let a = argv[i].as_str();
        let value = |args_i: &mut usize| -> String {
            *args_i += 1;
            argv.get(*args_i).cloned().unwrap_or_else(|| usage())
        };
        match a {
            "machine" | "simulate" => args.mode = a.to_string(),
            "--data" => args.data = Some(value(&mut i)),
            "--complete" => args.complete = Some(value(&mut i)),
            "--budget" => args.budget = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--latency" => args.latency = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--alpha" => args.alpha = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--strategy" => args.strategy = value(&mut i),
            "--m" => args.m = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--worker-accuracy" => {
                args.worker_accuracy = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 1;
    }
    if args.mode.is_empty() || args.data.is_none() {
        usage();
    }
    args
}

fn load(path: &str) -> Dataset {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    parse_csv(path, &text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    })
}

fn main() {
    let args = parse_args();
    let data = load(args.data.as_deref().expect("checked in parse_args"));
    eprintln!(
        "loaded {}: {} objects × {} attributes, missing rate {:.1}%",
        data.name(),
        data.n_objects(),
        data.n_attrs(),
        data.missing_rate() * 100.0
    );

    let strategy = match args.strategy.as_str() {
        "fbs" => TaskStrategy::Fbs,
        "ubs" => TaskStrategy::Ubs,
        "hhs" => TaskStrategy::Hhs { m: args.m },
        _ => usage(),
    };
    let config = BayesCrowdConfig {
        budget: args.budget,
        latency: args.latency,
        alpha: args.alpha,
        strategy,
        parallel: true,
        ..Default::default()
    };

    match args.mode.as_str() {
        "machine" => {
            let (answers, ctable) = machine_only_answers(&data, &config);
            println!("answers ({} objects):", answers.len());
            for o in &answers {
                println!("  {o}");
            }
            println!("c-table: {}", bc_ctable::CTableStats::of(&ctable));
        }
        "simulate" => {
            let Some(complete_path) = args.complete.as_deref() else {
                eprintln!("simulate mode needs --complete FILE.csv (the hidden truth)");
                exit(2);
            };
            let complete = load(complete_path);
            let oracle = GroundTruthOracle::new(complete);
            let mut platform = SimulatedPlatform::new(oracle, args.worker_accuracy, args.seed);
            let report = BayesCrowd::new(config).run(&data, &mut platform);
            println!("answers ({} objects):", report.result.len());
            for o in &report.result {
                println!("  {o}");
            }
            println!("{}", report.summary());
            if let Some(acc) = report.accuracy {
                println!(
                    "precision {:.3}  recall {:.3}  F1 {:.3}",
                    acc.precision, acc.recall, acc.f1
                );
            }
        }
        _ => usage(),
    }
}
