//! Command-line front end for crowd-assisted skyline queries.
//!
//! ```text
//! # Machine-only pass over an incomplete CSV (see bc_data::csv for the
//! # format): prints certain answers and per-object probabilities.
//! bayescrowd-cli machine --data movies.csv
//!
//! # Full simulated crowdsourcing run (the hidden complete CSV plays the
//! # crowd): prints the answer set, cost, and accuracy.
//! bayescrowd-cli simulate --data movies.csv --complete movies_full.csv \
//!     --budget 50 --latency 5 --alpha 0.01 --strategy hhs --m 15 \
//!     --worker-accuracy 0.95 --seed 42
//!
//! # The same run against a misbehaving crowd: 20% of tasks expire, 5% of
//! # the workforce quits each round, and failed tasks get 3 attempts.
//! bayescrowd-cli simulate --data movies.csv --complete movies_full.csv \
//!     --expiry 0.2 --attrition 0.05 --max-attempts 3
//!
//! # Observability: write a JSON-lines event trace, print per-phase
//! # timings plus counters, and dump the hierarchical span profile.
//! bayescrowd-cli simulate --data movies.csv --complete movies_full.csv \
//!     --trace run.jsonl --metrics --profile profile.json
//!
//! # Durable runs: checkpoint after every round, then resume a killed run
//! # from the newest checkpoint. The resumed run finishes with the same
//! # deterministic report the uninterrupted one would have produced.
//! bayescrowd-cli simulate --data movies.csv --complete movies_full.csv \
//!     --checkpoint-dir ckpt --report-out clean.txt
//! bayescrowd-cli simulate --data movies.csv --complete movies_full.csv \
//!     --resume ckpt/round-0003.bcsnap --report-out resumed.txt
//! ```

use bayescrowd::framework::machine_only_answers;
use bayescrowd::prelude::*;
use bc_crowd::{CrowdPlatform, FaultConfig, FaultyPlatform, GroundTruthOracle, SimulatedPlatform};
use bc_data::csv::parse_csv;
use bc_data::Dataset;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::exit;

struct Args {
    mode: String,
    data: Option<String>,
    complete: Option<String>,
    budget: usize,
    latency: usize,
    alpha: f64,
    strategy: String,
    m: usize,
    worker_accuracy: f64,
    seed: u64,
    expiry: f64,
    attrition: f64,
    spammer_rate: f64,
    max_attempts: usize,
    escalate_workers: usize,
    backoff: usize,
    trace: Option<String>,
    metrics: bool,
    profile: Option<String>,
    checkpoint_dir: Option<String>,
    resume: Option<String>,
    kill_after_round: Option<usize>,
    report_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bayescrowd-cli <machine|simulate> --data FILE.csv \
         [--complete FILE.csv] [--budget N] [--latency N] [--alpha F] \
         [--strategy fbs|ubs|hhs] [--m N] [--worker-accuracy F] [--seed N] \
         [--expiry F] [--attrition F] [--spammer-rate F] \
         [--max-attempts N] [--escalate-workers N] [--backoff N] \
         [--trace FILE.jsonl] [--metrics] [--profile FILE.json] \
         [--checkpoint-dir DIR] \
         [--resume FILE.bcsnap] [--kill-after-round N] [--report-out FILE]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        mode: String::new(),
        data: None,
        complete: None,
        budget: 50,
        latency: 5,
        alpha: 0.01,
        strategy: "hhs".into(),
        m: 15,
        worker_accuracy: 1.0,
        seed: 42,
        expiry: 0.0,
        attrition: 0.0,
        spammer_rate: 0.0,
        max_attempts: 2,
        escalate_workers: 0,
        backoff: 0,
        trace: None,
        metrics: false,
        profile: None,
        checkpoint_dir: None,
        resume: None,
        kill_after_round: None,
        report_out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let a = argv[i].as_str();
        let value = |args_i: &mut usize| -> String {
            *args_i += 1;
            argv.get(*args_i).cloned().unwrap_or_else(|| usage())
        };
        match a {
            "machine" | "simulate" => args.mode = a.to_string(),
            "--data" => args.data = Some(value(&mut i)),
            "--complete" => args.complete = Some(value(&mut i)),
            "--budget" => args.budget = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--latency" => args.latency = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--alpha" => args.alpha = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--strategy" => args.strategy = value(&mut i),
            "--m" => args.m = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--worker-accuracy" => {
                args.worker_accuracy = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--expiry" => args.expiry = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--attrition" => args.attrition = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--spammer-rate" => {
                args.spammer_rate = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--max-attempts" => {
                args.max_attempts = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--escalate-workers" => {
                args.escalate_workers = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--backoff" => args.backoff = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--trace" => args.trace = Some(value(&mut i)),
            "--metrics" => args.metrics = true,
            "--profile" => args.profile = Some(value(&mut i)),
            "--checkpoint-dir" => args.checkpoint_dir = Some(value(&mut i)),
            "--resume" => args.resume = Some(value(&mut i)),
            "--kill-after-round" => {
                args.kill_after_round = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--report-out" => args.report_out = Some(value(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    if args.mode.is_empty() || args.data.is_none() {
        usage();
    }
    args
}

/// Runs the crowdsourcing loop through the resumable [`Session`] API:
/// fresh or resumed from `--resume`, checkpointing into `--checkpoint-dir`
/// after every round (write to a temp file, then rename, so a crash never
/// leaves a torn checkpoint under the final name), and aborting the
/// process after round `--kill-after-round` to simulate a crash.
fn drive_session(
    engine: &BayesCrowd,
    data: &Dataset,
    platform: &mut dyn CrowdPlatform,
    observer: &mut dyn Observer,
    args: &Args,
) -> Result<RunReport, RunError> {
    let mut session = match args.resume.as_deref() {
        Some(path) => {
            let file = File::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open checkpoint {path}: {e}");
                exit(1);
            });
            Session::resume_observed(BufReader::new(file), platform, observer)?
        }
        None => engine.session_observed(data, platform, observer)?,
    };
    loop {
        let more = session.step()?;
        if let Some(dir) = args.checkpoint_dir.as_deref() {
            write_checkpoint(&mut session, dir)?;
            if more && args.kill_after_round == Some(session.round()) {
                eprintln!(
                    "--kill-after-round: aborting after round {} (checkpoint written)",
                    session.round()
                );
                std::process::abort();
            }
        }
        if !more {
            break;
        }
    }
    session.finalize()
}

fn write_checkpoint(session: &mut Session<'_>, dir: &str) -> Result<(), RunError> {
    let io = |e: std::io::Error| RunError::from(bc_snapshot::SnapshotError::Io(e));
    std::fs::create_dir_all(dir).map_err(io)?;
    let tmp = format!("{dir}/checkpoint.tmp");
    let mut out = BufWriter::new(File::create(&tmp).map_err(io)?);
    session.checkpoint(&mut out)?;
    out.flush().map_err(io)?;
    drop(out);
    let path = format!("{dir}/round-{:04}.bcsnap", session.round());
    std::fs::rename(&tmp, &path).map_err(io)?;
    eprintln!("checkpoint: {path}");
    Ok(())
}

/// The deterministic half of the report — everything except wall-clock
/// durations — one field per line, floats in full `{:?}` precision. Two
/// runs of the same seeded campaign (interrupted or not) must produce
/// byte-identical files, which is what the CI resume job diffs.
fn write_report(report: &RunReport, path: &str) {
    let mut text = String::new();
    let ids = |objs: &[bc_data::ObjectId]| {
        objs.iter()
            .map(|o| o.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    text.push_str(&format!("result: {}\n", ids(&report.result)));
    text.push_str(&format!("certain: {}\n", ids(&report.certain)));
    for (o, p) in &report.open_probabilities {
        text.push_str(&format!("open: {o}={p:?}\n"));
    }
    text.push_str(&format!(
        "crowd: posted={} rounds={} answers={} money={}\n",
        report.crowd.tasks_posted,
        report.crowd.rounds,
        report.crowd.worker_answers,
        report.crowd.money_spent
    ));
    text.push_str(&format!(
        "budget_left={} evals={} open_exprs_left={} expired={} retried={} stalled={} degraded={}\n",
        report.budget_left,
        report.probability_evals,
        report.open_exprs_left,
        report.tasks_expired,
        report.tasks_retried,
        report.rounds_stalled,
        report.degraded
    ));
    if let Some(acc) = report.accuracy {
        text.push_str(&format!(
            "accuracy: precision={:?} recall={:?} f1={:?}\n",
            acc.precision, acc.recall, acc.f1
        ));
    }
    std::fs::write(path, text).unwrap_or_else(|e| {
        eprintln!("cannot write report file {path}: {e}");
        exit(1);
    });
}

fn load(path: &str) -> Dataset {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    parse_csv(path, &text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    })
}

fn main() {
    let args = parse_args();
    let data = load(args.data.as_deref().expect("checked in parse_args"));
    eprintln!(
        "loaded {}: {} objects × {} attributes, missing rate {:.1}%",
        data.name(),
        data.n_objects(),
        data.n_attrs(),
        data.missing_rate() * 100.0
    );

    let strategy = match args.strategy.as_str() {
        "fbs" => TaskStrategy::Fbs,
        "ubs" => TaskStrategy::Ubs,
        "hhs" => TaskStrategy::Hhs { m: args.m },
        _ => usage(),
    };
    let config = BayesCrowdConfig::builder()
        .budget(args.budget)
        .latency(args.latency)
        .alpha(args.alpha)
        .strategy(strategy)
        .parallel(true)
        .retry(RetryPolicy {
            max_attempts: args.max_attempts.max(1),
            escalate_workers: args.escalate_workers,
            backoff_base: args.backoff,
        })
        .build()
        .unwrap_or_else(|e| {
            eprintln!("invalid configuration: {e}");
            exit(2);
        });

    match args.mode.as_str() {
        "machine" => {
            let (answers, ctable) = machine_only_answers(&data, &config);
            println!("answers ({} objects):", answers.len());
            for o in &answers {
                println!("  {o}");
            }
            println!("c-table: {}", bc_ctable::CTableStats::of(&ctable));
        }
        "simulate" => {
            let Some(complete_path) = args.complete.as_deref() else {
                eprintln!("simulate mode needs --complete FILE.csv (the hidden truth)");
                exit(2);
            };
            let complete = load(complete_path);
            let oracle = GroundTruthOracle::new(complete);
            let sim = SimulatedPlatform::new(oracle, args.worker_accuracy, args.seed);
            for (flag, p) in [
                ("--expiry", args.expiry),
                ("--attrition", args.attrition),
                ("--spammer-rate", args.spammer_rate),
            ] {
                if !(0.0..=1.0).contains(&p) {
                    eprintln!("{flag} must be a probability in [0, 1], got {p}");
                    exit(2);
                }
            }
            let faults = FaultConfig {
                expiry_prob: args.expiry,
                attrition: args.attrition,
                spammer_rate: args.spammer_rate,
                ..FaultConfig::default()
            };
            let engine = BayesCrowd::new(config);
            let mut metrics = MetricsRecorder::new();
            let mut sink = args.trace.as_deref().map(|path| {
                JsonLinesSink::create(path).unwrap_or_else(|e| {
                    eprintln!("cannot create trace file {path}: {e}");
                    exit(1);
                })
            });
            let mut noop = NoopObserver;
            // Only wrap when faults were requested, so fault-free runs stay
            // bit-identical to earlier versions under the same seed.
            let mut platform: Box<dyn CrowdPlatform> = if faults == FaultConfig::default() {
                Box::new(sim)
            } else {
                Box::new(FaultyPlatform::new(sim, faults, args.seed ^ 0x5eed))
            };
            let mut run = |observer: &mut dyn Observer| {
                drive_session(&engine, &data, platform.as_mut(), observer, &args)
            };
            let mut profiler = RunProfiler::new();
            let outcome = match (&mut sink, args.metrics, args.profile.is_some()) {
                (Some(s), true, true) => {
                    let mut inner = Tee::new(&mut metrics, &mut profiler);
                    run(&mut Tee::new(s, &mut inner))
                }
                (Some(s), true, false) => run(&mut Tee::new(s, &mut metrics)),
                (Some(s), false, true) => run(&mut Tee::new(s, &mut profiler)),
                (Some(s), false, false) => run(s),
                (None, true, true) => run(&mut Tee::new(&mut metrics, &mut profiler)),
                (None, true, false) => run(&mut metrics),
                (None, false, true) => run(&mut profiler),
                (None, false, false) => run(&mut noop),
            };
            let report = match outcome {
                Ok(report) => report,
                Err(RunError::PlatformExhausted { report }) => {
                    eprintln!("warning: the crowd answered nothing — machine-only answers below");
                    *report
                }
                Err(e) => {
                    eprintln!("run failed: {e}");
                    exit(1);
                }
            };
            if let Some(s) = sink {
                eprintln!("trace: {} events written", s.events_written());
                if let Some(e) = s.io_error() {
                    eprintln!("warning: trace writer hit an I/O error: {e}");
                }
            }
            if args.metrics {
                println!("{}", metrics.summary());
            }
            if let Some(path) = args.profile.as_deref() {
                let mut json = profiler.report().to_json();
                json.push('\n');
                std::fs::write(path, json).unwrap_or_else(|e| {
                    eprintln!("cannot write profile file {path}: {e}");
                    exit(1);
                });
                eprintln!("profile: {path}");
            }
            if let Some(path) = args.report_out.as_deref() {
                write_report(&report, path);
            }
            println!("answers ({} objects):", report.result.len());
            for o in &report.result {
                println!("  {o}");
            }
            println!("{}", report.summary());
            if report.degraded {
                println!(
                    "degraded: gave up on {} task(s) after {} retries and {} stalled round(s)",
                    report.tasks_expired, report.tasks_retried, report.rounds_stalled
                );
            }
            if let Some(acc) = report.accuracy {
                println!(
                    "precision {:.3}  recall {:.3}  F1 {:.3}",
                    acc.precision, acc.recall, acc.f1
                );
            }
        }
        _ => usage(),
    }
}
