//! Command-line front end for crowd-assisted skyline queries.
//!
//! ```text
//! # Machine-only pass over an incomplete CSV (see bc_data::csv for the
//! # format): prints certain answers and per-object probabilities.
//! bayescrowd-cli machine --data movies.csv
//!
//! # Full simulated crowdsourcing run (the hidden complete CSV plays the
//! # crowd): prints the answer set, cost, and accuracy.
//! bayescrowd-cli simulate --data movies.csv --complete movies_full.csv \
//!     --budget 50 --latency 5 --alpha 0.01 --strategy hhs --m 15 \
//!     --worker-accuracy 0.95 --seed 42
//!
//! # The same run against a misbehaving crowd: 20% of tasks expire, 5% of
//! # the workforce quits each round, and failed tasks get 3 attempts.
//! bayescrowd-cli simulate --data movies.csv --complete movies_full.csv \
//!     --expiry 0.2 --attrition 0.05 --max-attempts 3
//!
//! # Observability: write a JSON-lines event trace and print per-phase
//! # timings plus counters after the run.
//! bayescrowd-cli simulate --data movies.csv --complete movies_full.csv \
//!     --trace run.jsonl --metrics
//! ```

use bayescrowd::framework::machine_only_answers;
use bayescrowd::prelude::*;
use bc_crowd::{FaultConfig, FaultyPlatform, GroundTruthOracle, SimulatedPlatform};
use bc_data::csv::parse_csv;
use bc_data::Dataset;
use std::process::exit;

struct Args {
    mode: String,
    data: Option<String>,
    complete: Option<String>,
    budget: usize,
    latency: usize,
    alpha: f64,
    strategy: String,
    m: usize,
    worker_accuracy: f64,
    seed: u64,
    expiry: f64,
    attrition: f64,
    spammer_rate: f64,
    max_attempts: usize,
    escalate_workers: usize,
    backoff: usize,
    trace: Option<String>,
    metrics: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bayescrowd-cli <machine|simulate> --data FILE.csv \
         [--complete FILE.csv] [--budget N] [--latency N] [--alpha F] \
         [--strategy fbs|ubs|hhs] [--m N] [--worker-accuracy F] [--seed N] \
         [--expiry F] [--attrition F] [--spammer-rate F] \
         [--max-attempts N] [--escalate-workers N] [--backoff N] \
         [--trace FILE.jsonl] [--metrics]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        mode: String::new(),
        data: None,
        complete: None,
        budget: 50,
        latency: 5,
        alpha: 0.01,
        strategy: "hhs".into(),
        m: 15,
        worker_accuracy: 1.0,
        seed: 42,
        expiry: 0.0,
        attrition: 0.0,
        spammer_rate: 0.0,
        max_attempts: 2,
        escalate_workers: 0,
        backoff: 0,
        trace: None,
        metrics: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let a = argv[i].as_str();
        let value = |args_i: &mut usize| -> String {
            *args_i += 1;
            argv.get(*args_i).cloned().unwrap_or_else(|| usage())
        };
        match a {
            "machine" | "simulate" => args.mode = a.to_string(),
            "--data" => args.data = Some(value(&mut i)),
            "--complete" => args.complete = Some(value(&mut i)),
            "--budget" => args.budget = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--latency" => args.latency = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--alpha" => args.alpha = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--strategy" => args.strategy = value(&mut i),
            "--m" => args.m = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--worker-accuracy" => {
                args.worker_accuracy = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--expiry" => args.expiry = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--attrition" => args.attrition = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--spammer-rate" => {
                args.spammer_rate = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--max-attempts" => {
                args.max_attempts = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--escalate-workers" => {
                args.escalate_workers = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--backoff" => args.backoff = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--trace" => args.trace = Some(value(&mut i)),
            "--metrics" => args.metrics = true,
            _ => usage(),
        }
        i += 1;
    }
    if args.mode.is_empty() || args.data.is_none() {
        usage();
    }
    args
}

fn load(path: &str) -> Dataset {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    parse_csv(path, &text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    })
}

fn main() {
    let args = parse_args();
    let data = load(args.data.as_deref().expect("checked in parse_args"));
    eprintln!(
        "loaded {}: {} objects × {} attributes, missing rate {:.1}%",
        data.name(),
        data.n_objects(),
        data.n_attrs(),
        data.missing_rate() * 100.0
    );

    let strategy = match args.strategy.as_str() {
        "fbs" => TaskStrategy::Fbs,
        "ubs" => TaskStrategy::Ubs,
        "hhs" => TaskStrategy::Hhs { m: args.m },
        _ => usage(),
    };
    let config = BayesCrowdConfig::builder()
        .budget(args.budget)
        .latency(args.latency)
        .alpha(args.alpha)
        .strategy(strategy)
        .parallel(true)
        .retry(RetryPolicy {
            max_attempts: args.max_attempts.max(1),
            escalate_workers: args.escalate_workers,
            backoff_base: args.backoff,
        })
        .build()
        .unwrap_or_else(|e| {
            eprintln!("invalid configuration: {e}");
            exit(2);
        });

    match args.mode.as_str() {
        "machine" => {
            let (answers, ctable) = machine_only_answers(&data, &config);
            println!("answers ({} objects):", answers.len());
            for o in &answers {
                println!("  {o}");
            }
            println!("c-table: {}", bc_ctable::CTableStats::of(&ctable));
        }
        "simulate" => {
            let Some(complete_path) = args.complete.as_deref() else {
                eprintln!("simulate mode needs --complete FILE.csv (the hidden truth)");
                exit(2);
            };
            let complete = load(complete_path);
            let oracle = GroundTruthOracle::new(complete);
            let sim = SimulatedPlatform::new(oracle, args.worker_accuracy, args.seed);
            for (flag, p) in [
                ("--expiry", args.expiry),
                ("--attrition", args.attrition),
                ("--spammer-rate", args.spammer_rate),
            ] {
                if !(0.0..=1.0).contains(&p) {
                    eprintln!("{flag} must be a probability in [0, 1], got {p}");
                    exit(2);
                }
            }
            let faults = FaultConfig {
                expiry_prob: args.expiry,
                attrition: args.attrition,
                spammer_rate: args.spammer_rate,
                ..FaultConfig::default()
            };
            let engine = BayesCrowd::new(config);
            let mut metrics = MetricsRecorder::new();
            let mut sink = args.trace.as_deref().map(|path| {
                JsonLinesSink::create(path).unwrap_or_else(|e| {
                    eprintln!("cannot create trace file {path}: {e}");
                    exit(1);
                })
            });
            let mut noop = NoopObserver;
            // Only wrap when faults were requested, so fault-free runs stay
            // bit-identical to earlier versions under the same seed.
            let run = move |observer: &mut dyn Observer| {
                if faults == FaultConfig::default() {
                    let mut platform = sim;
                    engine.try_run(&data, &mut platform, observer)
                } else {
                    let mut platform = FaultyPlatform::new(sim, faults, args.seed ^ 0x5eed);
                    engine.try_run(&data, &mut platform, observer)
                }
            };
            let outcome = match (&mut sink, args.metrics) {
                (Some(s), true) => run(&mut Tee::new(s, &mut metrics)),
                (Some(s), false) => run(s),
                (None, true) => run(&mut metrics),
                (None, false) => run(&mut noop),
            };
            let report = match outcome {
                Ok(report) => report,
                Err(RunError::PlatformExhausted { report }) => {
                    eprintln!("warning: the crowd answered nothing — machine-only answers below");
                    *report
                }
                Err(e) => {
                    eprintln!("run failed: {e}");
                    exit(1);
                }
            };
            if let Some(s) = sink {
                eprintln!("trace: {} events written", s.events_written());
                if let Some(e) = s.io_error() {
                    eprintln!("warning: trace writer hit an I/O error: {e}");
                }
            }
            if args.metrics {
                println!("{}", metrics.summary());
            }
            println!("answers ({} objects):", report.result.len());
            for o in &report.result {
                println!("  {o}");
            }
            println!("{}", report.summary());
            if report.degraded {
                println!(
                    "degraded: gave up on {} task(s) after {} retries and {} stalled round(s)",
                    report.tasks_expired, report.tasks_retried, report.rounds_stalled
                );
            }
            if let Some(acc) = report.accuracy {
                println!(
                    "precision {:.3}  recall {:.3}  F1 {:.3}",
                    acc.precision, acc.recall, acc.f1
                );
            }
        }
        _ => usage(),
    }
}
